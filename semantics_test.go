package parsge

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"parsge/internal/graph"
	"parsge/internal/testutil"
)

// allSemantics lists every matching semantics once, for range loops.
var allSemantics = []Semantics{SubgraphIso, InducedIso, Homomorphism}

// engineConfigs are the engine configurations the differential tests run
// against the brute-force oracle: the four RI variants, the parallel
// engine (which inherits semantics through the shared ri.Prepare), the
// two independent baselines, and filter-toggled variants of each domain
// consumer — every new pruning filter is differentially validated both
// on (the default) and off, so an unsound filter and a filter whose
// absence breaks a code path are both caught.
var engineConfigs = []struct {
	name string
	opts Options
}{
	{"RI", Options{Algorithm: RI}},
	{"RI-DS", Options{Algorithm: RIDS}},
	{"RI-DS-SI", Options{Algorithm: RIDSSI}},
	{"RI-DS-SI-FC", Options{Algorithm: RIDSSIFC}},
	{"parallel-RI", Options{Algorithm: RI, Workers: 4}},
	{"parallel-RI-DS-SI-FC", Options{Algorithm: RIDSSIFC, Workers: 4, TaskGroupSize: 2}},
	{"VF2", Options{Algorithm: VF2}},
	{"LAD", Options{Algorithm: LAD}},
	{"RI-DS-SI-FC/noNLF", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{DisableNLF: true}}},
	{"RI-DS-SI-FC/noInducedAC", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{DisableInducedAC: true}}},
	{"LAD/noNLF", Options{Algorithm: LAD, Pruning: PruningOptions{DisableNLF: true}}},
	{"VF2/noInducedAC", Options{Algorithm: VF2, Pruning: PruningOptions{DisableInducedAC: true}}},
	// Schedule-space points: the default above is ScheduleAuto, so the
	// Fixed pipeline and the capped-AC (original RI-DS) schedule are the
	// configurations that need explicit coverage — an adaptive scheduler
	// bug that loses matches in just one plan must break one of these.
	{"RI-DS-SI-FC/fixed", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{Schedule: ScheduleFixed}}},
	{"RI-DS-SI-FC/ac1", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{Schedule: ScheduleFixed, ACPasses: 1}}},
	{"LAD/fixed", Options{Algorithm: LAD, Pruning: PruningOptions{Schedule: ScheduleFixed}}},
	{"VF2/ac1", Options{Algorithm: VF2, Pruning: PruningOptions{ACPasses: 1}}},
	// Kernel-space points: KernelAuto resolves to the bitset rows on
	// test-sized targets, so the explicit slice configurations keep the
	// classic CSR hot paths differentially covered, and the explicit
	// bitset configurations pin the forced side (fallback rules and all).
	{"RI-DS-SI-FC/sliceKernel", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{Kernel: KernelSlice}}},
	{"RI-DS-SI-FC/bitsetKernel", Options{Algorithm: RIDSSIFC, Pruning: PruningOptions{Kernel: KernelBitset}}},
	{"parallel-RI-DS-SI-FC/sliceKernel", Options{Algorithm: RIDSSIFC, Workers: 4, TaskGroupSize: 2, Pruning: PruningOptions{Kernel: KernelSlice}}},
	{"VF2/sliceKernel", Options{Algorithm: VF2, Pruning: PruningOptions{Kernel: KernelSlice}}},
	{"LAD/sliceKernel", Options{Algorithm: LAD, Pruning: PruningOptions{Kernel: KernelSlice}}},
}

// countAllEngines runs every engine configuration under sem and fails the
// test unless all of them return want.
func countAllEngines(t *testing.T, gp, gt *Graph, sem Semantics, want int64, label string) {
	t.Helper()
	for _, ec := range engineConfigs {
		opts := ec.opts
		opts.Semantics = sem
		got, err := Count(gp, gt, opts)
		if err != nil {
			t.Fatalf("%s: %s under %v: %v", label, ec.name, sem, err)
		}
		if got != want {
			t.Errorf("%s: %s under %v = %d, want %d", label, ec.name, sem, got, want)
		}
	}
}

// TestCrossEngineDifferential is the repository's central correctness
// test: on random (pattern, target) pairs — plain, extracted (match
// guaranteed), and nasty (parallel edges, self-loops) — every engine
// must agree with the brute-force oracle, and therefore with every other
// engine, under every matching semantics. Well over 100 instances per
// semantics.
func TestCrossEngineDifferential(t *testing.T) {
	kinds := []struct {
		name string
		opts testutil.InstanceOptions
	}{
		{"plain", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 24, PatternNodes: 4}},
		{"extract", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 24, PatternNodes: 4, Extract: true}},
		{"nasty", testutil.InstanceOptions{TargetNodes: 8, TargetEdges: 22, PatternNodes: 3, Nasty: true}},
		{"dense", testutil.InstanceOptions{TargetNodes: 7, TargetEdges: 30, PatternNodes: 4, NodeLabels: 2, Extract: true}},
	}
	const seedsPerKind = 30 // 4 kinds × 30 seeds = 120 instances per semantics
	for _, k := range kinds {
		for seed := int64(0); seed < seedsPerKind; seed++ {
			gp, gt := testutil.RandomInstance(seed, k.opts)
			for _, sem := range allSemantics {
				want := testutil.BruteCountSem(gp, gt, sem)
				label := fmt.Sprintf("%s/seed=%d", k.name, seed)
				countAllEngines(t, gp, gt, sem, want, label)
			}
		}
	}
}

// TestHomLargerPattern: homomorphisms may map a larger pattern into a
// smaller target; the injective semantics must reject such instances
// without error. P3 into a single undirected edge has exactly two homs
// (fold the path onto the edge).
func TestHomLargerPattern(t *testing.T) {
	gp := pathGraph(3)
	bt := NewBuilder(2, 2)
	bt.AddNodes(2)
	bt.AddEdgeBoth(0, 1, 0)
	gt := bt.MustBuild()

	countAllEngines(t, gp, gt, Homomorphism, 2, "P3->K2")
	countAllEngines(t, gp, gt, SubgraphIso, 0, "P3->K2")
	countAllEngines(t, gp, gt, InducedIso, 0, "P3->K2")
}

// pathGraph returns the undirected path on n unlabeled nodes.
func pathGraph(n int) *Graph {
	b := NewBuilder(n, 2*(n-1))
	b.AddNodes(n)
	for i := 0; i < n-1; i++ {
		b.AddEdgeBoth(int32(i), int32(i+1), 0)
	}
	return b.MustBuild()
}

// cycleGraph returns the undirected cycle on n unlabeled nodes.
func cycleGraph(n int) *Graph {
	b := NewBuilder(n, 2*n)
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		b.AddEdgeBoth(int32(i), int32((i+1)%n), 0)
	}
	return b.MustBuild()
}

// cliqueGraph returns the complete unlabeled graph on n nodes.
func cliqueGraph(n int) *Graph {
	b := NewBuilder(n, n*(n-1))
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdgeBoth(int32(i), int32(j), 0)
		}
	}
	return b.MustBuild()
}

// starGraph returns the undirected star: node 0 joined to n leaves.
func starGraph(leaves int) *Graph {
	b := NewBuilder(leaves+1, 2*leaves)
	b.AddNodes(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddEdgeBoth(0, int32(i), 0)
	}
	return b.MustBuild()
}

// directedCycle returns the directed cycle on n unlabeled nodes.
func directedCycle(n int) *Graph {
	b := NewBuilder(n, n)
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n), 0)
	}
	return b.MustBuild()
}

// goldenMotifCases are the hand-computed motif tables
// TestGoldenMotifCounts pins; the kernel differential battery re-runs
// them with the bitset kernel forced on every engine.
var goldenMotifCases = []struct {
	name               string
	pattern, target    *Graph
	iso, induced, homo int64
}{
	// Every vertex triple of K4 induces a triangle: 4·3·2 ordered
	// embeddings, and homomorphic images of a triangle must be
	// pairwise-adjacent, hence distinct — all three counts agree.
	{"triangle-in-K4", cycleGraph(3), cliqueGraph(4), 24, 24, 24},
	// Ordered P3 paths in a triangle: 3 centers × 2 endpoint
	// orders. None induced (the endpoints are always adjacent).
	// Homs additionally fold endpoints together: 3 centers × 2 × 2
	// independent endpoint choices.
	{"P3-in-C3", pathGraph(3), cycleGraph(3), 6, 0, 12},
	// P3 in P3: the pattern center must map to the target center
	// (ends have degree 1); the ends are non-adjacent, so both
	// embeddings are induced. Homs are walks of length 2: 1+4+1.
	{"P3-in-P3", pathGraph(3), pathGraph(3), 2, 2, 6},
	// P4 runs in C6: 6 start points × 2 directions; all chordless
	// in a 6-cycle, hence induced. Homs are walks of length 3:
	// 6 starts × 2^3 step choices.
	{"P4-in-C6", pathGraph(4), cycleGraph(6), 12, 12, 48},
	// Claw (star with 3 leaves) in K4: center 4 × 3! leaf orders;
	// never induced (leaves are adjacent in K4); homs pick each
	// leaf independently from the center's 3 neighbors.
	{"claw-in-K4", starGraph(3), cliqueGraph(4), 24, 0, 108},
	// A directed 3-cycle in itself: the 3 rotations, which are also
	// induced (no extra arcs exist); homs add nothing (images of a
	// directed cycle in a directed cycle of equal length are the
	// rotations).
	{"C3->C3-directed", directedCycle(3), directedCycle(3), 3, 3, 3},
	// A directed 3-cycle has no homomorphism into a single arc
	// (the target has no closed walk).
	{"C3->arc-directed", directedCycle(3), pathArc(), 0, 0, 0},
}

// TestGoldenMotifCounts pins classic motif counts with hand-computed
// expected values per semantics. Counts are ordered embeddings (divide
// by Automorphisms for occurrences).
func TestGoldenMotifCounts(t *testing.T) {
	for _, c := range goldenMotifCases {
		t.Run(c.name, func(t *testing.T) {
			wants := map[Semantics]int64{
				SubgraphIso:  c.iso,
				InducedIso:   c.induced,
				Homomorphism: c.homo,
			}
			for _, sem := range allSemantics {
				// The oracle first: if a hand-computed value is wrong the
				// failure message points here, not at an engine.
				if got := testutil.BruteCountSem(c.pattern, c.target, sem); got != wants[sem] {
					t.Fatalf("oracle under %v = %d, want %d (hand-computed)", sem, got, wants[sem])
				}
				countAllEngines(t, c.pattern, c.target, sem, wants[sem], c.name)
			}
		})
	}
}

// pathArc returns the 2-node graph with the single arc 0→1.
func pathArc() *Graph {
	b := NewBuilder(2, 1)
	b.AddNodes(2)
	b.AddEdge(0, 1, 0)
	return b.MustBuild()
}

// TestCountInvariantUnderRelabeling: enumeration counts must not depend
// on target node ids. Random relabelings exercise different orderings,
// domain layouts and candidate iteration orders; a count change reveals
// an ordering-dependent bug in internal/order or the domain filtering.
func TestCountInvariantUnderRelabeling(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 10, TargetEdges: 28, PatternNodes: 4, Extract: seed%2 == 0,
		})
		rng := rand.New(rand.NewSource(seed * 7919))
		for _, sem := range allSemantics {
			base := make(map[string]int64)
			for _, ec := range engineConfigs {
				opts := ec.opts
				opts.Semantics = sem
				n, err := Count(gp, gt, opts)
				if err != nil {
					t.Fatal(err)
				}
				base[ec.name] = n
			}
			for round := 0; round < 3; round++ {
				pgt := testutil.PermuteGraph(rng, gt)
				for _, ec := range engineConfigs {
					opts := ec.opts
					opts.Semantics = sem
					n, err := Count(gp, pgt, opts)
					if err != nil {
						t.Fatal(err)
					}
					if n != base[ec.name] {
						t.Errorf("seed %d round %d: %s under %v = %d on relabeled target, want %d",
							seed, round, ec.name, sem, n, base[ec.name])
					}
				}
			}
		}
	}
}

// TestSemanticsContainment checks the definitional ordering on every
// random instance: induced embeddings ⊆ non-induced embeddings ⊆
// homomorphisms, so the counts must be monotone.
func TestSemanticsContainment(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 9, TargetEdges: 26, PatternNodes: 4, Nasty: seed%3 == 0,
		})
		ind := testutil.BruteCountSem(gp, gt, graph.InducedIso)
		iso := testutil.BruteCountSem(gp, gt, graph.SubgraphIso)
		hom := testutil.BruteCountSem(gp, gt, graph.Homomorphism)
		if ind > iso || iso > hom {
			t.Fatalf("seed %d: containment violated: induced=%d iso=%d hom=%d", seed, ind, iso, hom)
		}
	}
}

// TestTargetDefaultSemantics: a session-level default applies to queries
// that don't choose a semantics and is overridden by ones that do —
// including an explicit Semantics: SubgraphIso, which is distinguishable
// from "unset" since the SemanticsUnset zero value was introduced
// (regression: it used to be silently replaced by the default, making a
// hom-default Target unqueryable under plain subgraph isomorphism).
func TestTargetDefaultSemantics(t *testing.T) {
	gp, gt := pathGraph(3), cycleGraph(3) // 6 iso / 0 induced / 12 hom
	tgt, err := NewTarget(gt, TargetOptions{DefaultSemantics: Homomorphism})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if n, err := tgt.Count(ctx, gp, Options{}); err != nil || n != 12 {
		t.Errorf("default semantics: got %d, %v; want 12 homs", n, err)
	}
	if n, err := tgt.Count(ctx, gp, Options{Semantics: SubgraphIso}); err != nil || n != 6 {
		t.Errorf("explicit SubgraphIso overrides default: got %d, %v; want 6 isos", n, err)
	}
	if n, err := tgt.Count(ctx, gp, Options{Semantics: InducedIso}); err != nil || n != 0 {
		t.Errorf("explicit InducedIso overrides default: got %d, %v; want 0", n, err)
	}
	if n, err := tgt.Count(ctx, gp, Options{Induced: true}); err != nil || n != 0 {
		t.Errorf("Induced overrides default: got %d, %v; want 0", n, err)
	}
	if _, err := NewTarget(gt, TargetOptions{DefaultSemantics: Semantics(9)}); err == nil {
		t.Error("invalid DefaultSemantics accepted")
	}
	// The override must hold for every engine, not just the default one.
	for _, ec := range engineConfigs {
		opts := ec.opts
		opts.Semantics = SubgraphIso
		if n, err := tgt.Count(ctx, gp, opts); err != nil || n != 6 {
			t.Errorf("%s: explicit SubgraphIso on hom-default target: got %d, %v; want 6", ec.name, n, err)
		}
	}
}

// TestTargetDefaultWorkersExplicitSequential: Workers: 1 is the explicit
// spelling of "sequential" and must not be replaced by DefaultWorkers
// (only the zero value is). The sequential engine reports no per-worker
// breakdown, which is how the two paths are told apart.
func TestTargetDefaultWorkersExplicitSequential(t *testing.T) {
	gp, gt := pathGraph(3), cycleGraph(6)
	tgt, err := NewTarget(gt, TargetOptions{DefaultWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := tgt.Enumerate(ctx, gp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerWorkerStates != nil {
		t.Errorf("Workers: 1 ran the parallel engine (%d workers) despite the explicit sequential request",
			len(res.PerWorkerStates))
	}
	res, err = tgt.Enumerate(ctx, gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkerStates) != 4 {
		t.Errorf("unset Workers: got %d per-worker entries, want the default pool of 4", len(res.PerWorkerStates))
	}
}

// TestEnumerateBatchItemsMixedSemantics: one batch over one shared pool
// answers patterns under different matching semantics; unset items fall
// back to the batch Options, then to the Target default.
func TestEnumerateBatchItemsMixedSemantics(t *testing.T) {
	gp, gt := pathGraph(3), cycleGraph(3) // 6 iso / 0 induced / 12 hom
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Pattern: gp, Semantics: SubgraphIso},
		{Pattern: gp, Semantics: InducedIso},
		{Pattern: gp, Semantics: Homomorphism},
		{Pattern: gp}, // falls back to the batch Options below
	}
	want := []int64{6, 0, 12, 12}
	for _, workers := range []int{1, 3} {
		res, err := tgt.EnumerateBatchItems(context.Background(), items,
			Options{Semantics: Homomorphism, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Matches != want[i] {
				t.Errorf("workers=%d item %d: got %d matches, want %d", workers, i, r.Matches, want[i])
			}
		}
	}
	// A per-item choice also wins over the legacy Induced flag.
	res, err := tgt.EnumerateBatchItems(context.Background(),
		[]BatchItem{{Pattern: gp, Semantics: Homomorphism}, {Pattern: gp}},
		Options{Induced: true})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Matches != 12 || res[1].Matches != 0 {
		t.Errorf("Induced batch with hom item: got %d/%d, want 12/0", res[0].Matches, res[1].Matches)
	}
}

// TestSemanticsString pins the names used in logs and CLI output.
func TestSemanticsString(t *testing.T) {
	for sem, want := range map[Semantics]string{
		SemanticsUnset: "unset",
		SubgraphIso:    "subgraph-iso",
		InducedIso:     "induced-iso",
		Homomorphism:   "homomorphism",
	} {
		if sem.String() != want {
			t.Errorf("%d.String() = %q, want %q", int32(sem), sem.String(), want)
		}
	}
}
