package parsge

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"parsge/internal/census"
)

// This file is the public face of the motif-census subsystem
// (internal/census): enumerate every connected k-vertex subgraph of the
// session's target and report counts per induced-subgraph isomorphism
// class. It is the inverse of the library's usual question — not "where
// does this pattern occur" but "which patterns occur, and how often" —
// the network-motif analysis run on biological and social graphs.

// MinCensusK and MaxCensusK bound CensusOptions.K.
const (
	MinCensusK = census.MinK
	MaxCensusK = census.MaxK
)

// CensusOptions configures Target.Census.
type CensusOptions struct {
	// K is the subgraph size, in [MinCensusK, MaxCensusK].
	K int
	// Workers sets the parallel worker count: 0 falls back to the
	// session's DefaultWorkers, 1 (or an unset default) runs the
	// sequential walker, AutoWorkers sizes the pool as
	// min(GOMAXPROCS, target nodes).
	Workers int
	// Timeout aborts the census after the given wall time (0 = none),
	// layered over ctx exactly like Options.Timeout.
	Timeout time.Duration
	// Seed seeds the steal pool's scheduling decisions; counts are
	// identical for all seeds.
	Seed int64
}

// CensusClass is one isomorphism class of a census: a count plus a
// representative of the class.
type CensusClass struct {
	// Count is the number of connected k-vertex sets of the target whose
	// induced subgraph belongs to this class.
	Count int64
	// Pattern is the class representative in canonical numbering —
	// directly usable as a query pattern (under InducedIso semantics it
	// matches exactly the counted vertex sets, Count × automorphisms
	// ordered embeddings).
	Pattern *Graph
	// Encoding is the canonical encoding identifying the class (the
	// CanonicalPattern bytes of Pattern); Hash is HashEncoding of it.
	// Treat the bytes as read-only.
	Encoding []byte
	Hash     uint64
}

// CensusResult reports one census run.
type CensusResult struct {
	// K is the subgraph size the census ran at.
	K int
	// Subgraphs is the total number of connected k-vertex subgraphs
	// found (the sum of all class counts).
	Subgraphs int64
	// Classes is sorted by descending Count (ties by encoding).
	Classes []CensusClass
	// MemoHits and MemoMisses count lookups of the canonical-class memo:
	// each miss paid one canonization, each hit skipped it.
	MemoHits, MemoMisses int64
	// Steals counts stolen root tasks (parallel runs only).
	Steals int64
	// PerWorkerSubgraphs breaks Subgraphs down by worker (parallel runs
	// only): the work-division profile of the root split.
	PerWorkerSubgraphs []int64
	// TimedOut reports the census was cut short by ctx or Timeout;
	// counts are then lower bounds.
	TimedOut bool
	// Duration is the wall time of the run.
	Duration time.Duration
	// Epoch is the target mutation epoch the census ran against (see
	// Target.ApplyUpdates); caches compare it with Target.Epoch() to
	// drop censuses of superseded graph versions.
	Epoch uint64
}

// Census enumerates every connected k-vertex subgraph of the session's
// target (ESU enumeration — each vertex set is found exactly once) and
// returns per-isomorphism-class counts with a representative pattern
// graph per class. Classes are induced: two vertex sets fall in the
// same class when their induced subgraphs — directions, labels,
// self-loops and parallel edges included — are isomorphic.
//
// Cancelling ctx (or exceeding opts.Timeout) aborts the run promptly;
// the partial result has TimedOut set and all counts are lower bounds.
// Safe to call concurrently with any other queries on the same Target;
// the run is folded into Stats() under the plan bucket "census:k=<K>".
func (t *Target) Census(ctx context.Context, opts CensusOptions) (CensusResult, error) {
	if opts.K < MinCensusK || opts.K > MaxCensusK {
		return CensusResult{}, fmt.Errorf("parsge: census K must be in [%d, %d], got %d", MinCensusK, MaxCensusK, opts.K)
	}
	st := t.state.Load() // one snapshot for the whole run, like every query
	workers := opts.Workers
	if workers == 0 {
		workers = t.defaultWorkers
	}
	if workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
		if n := st.g.NumNodes(); workers > n {
			workers = n
		}
	}
	if workers < 1 {
		workers = 1
	}
	qctx, stop := queryContext(ctx, opts.Timeout)
	defer stop()
	start := time.Now()
	res, err := census.Run(qctx, st.g, census.Options{K: opts.K, Workers: workers, Seed: opts.Seed})
	if err != nil {
		return CensusResult{}, err
	}
	out := CensusResult{
		K:                  res.K,
		Subgraphs:          res.Subgraphs,
		Classes:            make([]CensusClass, len(res.Classes)),
		MemoHits:           res.MemoHits,
		MemoMisses:         res.MemoMisses,
		Steals:             res.Steals,
		PerWorkerSubgraphs: res.PerWorkerSubgraphs,
		TimedOut:           res.Aborted,
		Duration:           time.Since(start),
		Epoch:              st.epoch,
	}
	for i, c := range res.Classes {
		out.Classes[i] = CensusClass{Count: c.Count, Pattern: c.Rep, Encoding: c.Encoding, Hash: c.Hash}
	}
	t.stats.recordCensus(&out)
	return out, nil
}
