package parsge

import (
	"testing"

	"parsge/internal/testutil"
)

// decodeFuzzPair decodes fuzzer bytes into a small (pattern, target,
// semantics) triple. The layout is positional and total — missing bytes
// read as zero, so every input decodes to a valid instance and the
// fuzzer's energy goes into graph shapes rather than parser errors:
//
//	[0]              semantics (mod 3)
//	[1] [2]          pattern / target node counts (1–4 / 1–6)
//	[3..]            np pattern node labels (mod 3)
//	[.]              pattern edge count (mod 11)
//	2 bytes per edge u = b1 mod np, v = b2 mod np, label = (b1>>6) & 1
//	[.]              nt target node labels (mod 3)
//	[.]              target edge count (mod 15)
//	2 bytes per edge as above
//
// Self-loops, parallel edges and disconnected patterns all arise
// naturally from the modular arithmetic — exactly the corner cases the
// engines must count identically.
func decodeFuzzPair(data []byte) (gp, gt *Graph, sem Semantics) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	sem = Semantics(next() % 3)
	np := 1 + int(next())%4
	nt := 1 + int(next())%6

	build := func(n, maxEdges int) *Graph {
		b := NewBuilder(n, 0)
		for i := 0; i < n; i++ {
			b.AddNode(Label(next() % 3))
		}
		m := int(next()) % maxEdges
		for i := 0; i < m; i++ {
			e1, e2 := next(), next()
			b.AddEdge(int32(int(e1)%n), int32(int(e2)%n), Label((e1>>6)&1))
		}
		return b.MustBuild()
	}
	gp = build(np, 11)
	gt = build(nt, 15)
	return gp, gt, sem
}

// FuzzCrossEngine decodes fuzzer bytes into a (pattern, target,
// semantics) instance and asserts that every engine configuration agrees
// with the brute-force oracle — the differential test of
// TestCrossEngineDifferential, driven by coverage-guided inputs instead
// of seeds. The committed corpus under testdata/fuzz/FuzzCrossEngine
// plus the f.Add seeds below pin known-tricky shapes; in a plain
// `go test` run the seeds execute as regression tests.
func FuzzCrossEngine(f *testing.F) {
	// Undirected triangle pattern (no self-loops) in K4, per semantics.
	triangle := []byte{
		0, 2, 3, // sem, np=3, nt=4
		0, 0, 0, // pattern labels
		6, 0, 1, 1, 0, 1, 2, 2, 1, 2, 0, 0, 2, // 6 arcs = undirected C3
		0, 0, 0, 0, // target labels
		12, // 12 arcs = undirected K4
		0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0, 1, 2, 2, 1, 1, 3, 3, 1, 2, 3, 3, 2,
	}
	for sem := byte(0); sem < 3; sem++ {
		seed := append([]byte(nil), triangle...)
		seed[0] = sem
		f.Add(seed)
	}
	// Star pattern (center 0, three leaves) in a 5-node star target.
	f.Add([]byte{
		2, 3, 4,
		0, 0, 0, 0,
		6, 0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0,
		0, 0, 0, 0, 0,
		8, 0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0, 0, 4, 4, 0,
	})
	// Disconnected pattern (two isolated labeled nodes) in a labeled path.
	f.Add([]byte{1, 1, 2, 1, 2, 0, 1, 2, 0, 2, 0, 1, 1, 0})
	// Self-loops and parallel edges on both sides (byte 64 flips the
	// edge-label bit): pattern {0→0, 0→1 twice with different labels},
	// target {both self-loops, 0→1 twice}.
	f.Add([]byte{0, 1, 1, 0, 0, 3, 0, 0, 64, 1, 0, 1, 0, 0, 4, 0, 0, 1, 1, 64, 1, 0, 1})
	// Pattern path P3 into a single looped node: zero under the
	// injective semantics, nonzero as a homomorphism.
	f.Add([]byte{2, 3, 0, 0, 0, 0, 0, 2, 0, 1, 1, 2, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		gp, gt, sem := decodeFuzzPair(data)
		want := testutil.BruteCountSem(gp, gt, sem)
		for _, ec := range engineConfigs {
			opts := ec.opts
			opts.Semantics = sem
			got, err := Count(gp, gt, opts)
			if err != nil {
				t.Fatalf("%s under %v: %v\npattern=%v target=%v", ec.name, sem, err, gp.Edges(), gt.Edges())
			}
			if got != want {
				t.Fatalf("%s under %v = %d, oracle = %d\npattern(n=%d)=%v\ntarget(n=%d)=%v",
					ec.name, sem, got, want, gp.NumNodes(), gp.Edges(), gt.NumNodes(), gt.Edges())
			}
		}
	})
}
