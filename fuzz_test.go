package parsge

import (
	"context"
	"testing"

	"parsge/internal/domain"
	"parsge/internal/testutil"
)

// decodeFuzzPair decodes fuzzer bytes into a small (pattern, target,
// semantics) triple. The layout is positional and total — missing bytes
// read as zero, so every input decodes to a valid instance and the
// fuzzer's energy goes into graph shapes rather than parser errors:
//
//	[0]              semantics (1 + mod 3: SubgraphIso, InducedIso, Homomorphism)
//	[1] [2]          pattern / target node counts (1–4 / 1–6)
//	[3..]            np pattern node labels (mod 3)
//	[.]              pattern edge count (mod 11)
//	2 bytes per edge u = b1 mod np, v = b2 mod np, label = (b1>>6) & 1
//	[.]              nt target node labels (mod 3)
//	[.]              target edge count (mod 15)
//	2 bytes per edge as above
//
// Self-loops, parallel edges and disconnected patterns all arise
// naturally from the modular arithmetic — exactly the corner cases the
// engines must count identically.
func decodeFuzzPair(data []byte) (gp, gt *Graph, sem Semantics) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	// 1 + mod 3 keeps byte values 0/1/2 mapping to iso/induced/hom like
	// the pre-sentinel encoding, so the committed corpus keeps meaning.
	sem = Semantics(1 + next()%3)
	np := 1 + int(next())%4
	nt := 1 + int(next())%6

	build := func(n, maxEdges int) *Graph {
		b := NewBuilder(n, 0)
		for i := 0; i < n; i++ {
			b.AddNode(Label(next() % 3))
		}
		m := int(next()) % maxEdges
		for i := 0; i < m; i++ {
			e1, e2 := next(), next()
			b.AddEdge(int32(int(e1)%n), int32(int(e2)%n), Label((e1>>6)&1))
		}
		return b.MustBuild()
	}
	gp = build(np, 11)
	gt = build(nt, 15)
	return gp, gt, sem
}

// FuzzCrossEngine decodes fuzzer bytes into a (pattern, target,
// semantics) instance and asserts that every engine configuration agrees
// with the brute-force oracle — the differential test of
// TestCrossEngineDifferential, driven by coverage-guided inputs instead
// of seeds. The committed corpus under testdata/fuzz/FuzzCrossEngine
// plus the f.Add seeds below pin known-tricky shapes; in a plain
// `go test` run the seeds execute as regression tests.
func FuzzCrossEngine(f *testing.F) {
	// Undirected triangle pattern (no self-loops) in K4, per semantics.
	triangle := []byte{
		0, 2, 3, // sem, np=3, nt=4
		0, 0, 0, // pattern labels
		6, 0, 1, 1, 0, 1, 2, 2, 1, 2, 0, 0, 2, // 6 arcs = undirected C3
		0, 0, 0, 0, // target labels
		12, // 12 arcs = undirected K4
		0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0, 1, 2, 2, 1, 1, 3, 3, 1, 2, 3, 3, 2,
	}
	for sem := byte(0); sem < 3; sem++ {
		seed := append([]byte(nil), triangle...)
		seed[0] = sem
		f.Add(seed)
	}
	// Star pattern (center 0, three leaves) in a 5-node star target.
	f.Add([]byte{
		2, 3, 4,
		0, 0, 0, 0,
		6, 0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0,
		0, 0, 0, 0, 0,
		8, 0, 1, 1, 0, 0, 2, 2, 0, 0, 3, 3, 0, 0, 4, 4, 0,
	})
	// Disconnected pattern (two isolated labeled nodes) in a labeled path.
	f.Add([]byte{1, 1, 2, 1, 2, 0, 1, 2, 0, 2, 0, 1, 1, 0})
	// Self-loops and parallel edges on both sides (byte 64 flips the
	// edge-label bit): pattern {0→0, 0→1 twice with different labels},
	// target {both self-loops, 0→1 twice}.
	f.Add([]byte{0, 1, 1, 0, 0, 3, 0, 0, 64, 1, 0, 1, 0, 0, 4, 0, 0, 1, 1, 64, 1, 0, 1})
	// Pattern path P3 into a single looped node: zero under the
	// injective semantics, nonzero as a homomorphism.
	f.Add([]byte{2, 3, 0, 0, 0, 0, 0, 2, 0, 1, 1, 2, 0, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		gp, gt, sem := decodeFuzzPair(data)
		want := testutil.BruteCountSem(gp, gt, sem)
		for _, ec := range engineConfigs {
			opts := ec.opts
			opts.Semantics = sem
			got, err := Count(gp, gt, opts)
			if err != nil {
				t.Fatalf("%s under %v: %v\npattern=%v target=%v", ec.name, sem, err, gp.Edges(), gt.Edges())
			}
			if got != want {
				t.Fatalf("%s under %v = %d, oracle = %d\npattern(n=%d)=%v\ntarget(n=%d)=%v",
					ec.name, sem, got, want, gp.NumNodes(), gp.Edges(), gt.NumNodes(), gt.Edges())
			}
		}
	})
}

// decodeContainmentPair decodes fuzzer bytes into a (pattern, target)
// pair for FuzzContainment. The layout mirrors decodeFuzzPair but scales
// past the oracle-bound caps: up to 4 pattern and 18 target nodes with
// denser edge budgets — instances far too large for the brute-force
// oracle (O(nt^np) with no pruning) yet cheap for the engines:
//
//	[0] [1]          pattern / target node counts (1–4 / 1–18)
//	[2..]            np pattern node labels (mod 4)
//	[.]              pattern edge count (mod 13)
//	2 bytes per edge u = b1 mod np, v = b2 mod np, label = (b1>>6) & 1
//	[.]              nt target node labels (mod 4)
//	[.]              target edge count (mod 61)
//	2 bytes per edge as above
func decodeContainmentPair(data []byte) (gp, gt *Graph) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	np := 1 + int(next())%4
	nt := 1 + int(next())%18

	build := func(n, maxEdges int) *Graph {
		b := NewBuilder(n, 0)
		for i := 0; i < n; i++ {
			b.AddNode(Label(next() % 4))
		}
		m := int(next()) % maxEdges
		for i := 0; i < m; i++ {
			e1, e2 := next(), next()
			b.AddEdge(int32(int(e1)%n), int32(int(e2)%n), Label((e1>>6)&1))
		}
		return b.MustBuild()
	}
	gp = build(np, 13)
	gt = build(nt, 61)
	return gp, gt
}

// FuzzContainment checks the definitional containment chain
// induced ≤ iso ≤ hom on instances well past the 4/6-node cap of the
// oracle-backed FuzzCrossEngine: no brute-force reference is needed,
// because the chain is an invariant of the definitions themselves, and
// cross-checking two independent engine families (RI-DS-SI-FC and LAD)
// per semantics supplies the equality oracle. A pruning bug that loses
// or invents matches in just one semantics breaks the chain or the
// cross-check. Seeds and the committed corpus under
// testdata/fuzz/FuzzContainment pin known-tricky shapes.
func FuzzContainment(f *testing.F) {
	// Undirected C4 in a 12-node target: a C6 ring plus a hub node 6
	// joined to ring nodes 0, 1 and 2 (18 arcs), leaving nodes 7–11
	// isolated.
	f.Add([]byte{
		3, 11,
		0, 0, 0, 0,
		8, 0, 1, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 0, 0, 3,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
		18, 0, 1, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 3, 4, 4, 3, 4, 5, 5, 4,
		5, 0, 0, 5, 0, 6, 6, 0, 1, 6, 6, 1, 2, 6, 6, 2,
	})
	// Self-loops and parallel edges on a mid-size target.
	f.Add([]byte{1, 9, 2, 0, 5, 0, 0, 64, 1, 0, 1, 1, 0, 2, 2, 2, 1, 0, 1, 2, 0,
		9, 0, 0, 1, 1, 64, 1, 0, 1, 3, 3, 2, 3, 3, 2})
	// A pattern larger than small targets under hom (nt=2).
	f.Add([]byte{3, 1, 0, 0, 0, 0, 6, 0, 1, 1, 0, 1, 2, 2, 1, 2, 3, 3, 2, 0, 0, 3, 0, 1, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		gp, gt := decodeContainmentPair(data)
		// The last input byte steers the two engines to *different*
		// points of the schedule space (schedule, AC depth, filter
		// toggles) and of the kernel space (bits 4–5 and 6–7 pick the
		// candidate kernel per engine independently), so the cross-check
		// also differentially validates the adaptive scheduler and the
		// bitset kernel layer: a plan- or kernel-dependent count breaks
		// the equality below even when it breaks it in only one engine.
		var knobs byte
		if len(data) > 0 {
			knobs = data[len(data)-1]
		}
		kernels := []Kernel{KernelAuto, KernelBitset, KernelSlice}
		riPruning := PruningOptions{
			Schedule:   []Schedule{ScheduleAuto, ScheduleFixed}[knobs&1],
			ACPasses:   int(knobs >> 1 & 1),
			DisableNLF: knobs>>2&1 == 1,
			Kernel:     kernels[int(knobs>>4&3)%3],
		}
		ladPruning := PruningOptions{
			Schedule:         []Schedule{ScheduleFixed, ScheduleAuto}[knobs&1],
			DisableInducedAC: knobs>>3&1 == 1,
			Kernel:           kernels[int(knobs>>6&3)%3],
		}
		var counts [3]int64
		sems := []Semantics{InducedIso, SubgraphIso, Homomorphism}
		for i, sem := range sems {
			ri, err := Count(gp, gt, Options{Algorithm: RIDSSIFC, Semantics: sem, Pruning: riPruning})
			if err != nil {
				t.Fatalf("RI-DS-SI-FC under %v: %v\npattern=%v target=%v", sem, err, gp.Edges(), gt.Edges())
			}
			lad, err := Count(gp, gt, Options{Algorithm: LAD, Semantics: sem, Pruning: ladPruning})
			if err != nil {
				t.Fatalf("LAD under %v: %v\npattern=%v target=%v", sem, err, gp.Edges(), gt.Edges())
			}
			if ri != lad {
				t.Fatalf("engines disagree under %v (knobs=%#x): RI-DS-SI-FC=%d LAD=%d\npattern(n=%d)=%v\ntarget(n=%d)=%v",
					sem, knobs, ri, lad, gp.NumNodes(), gp.Edges(), gt.NumNodes(), gt.Edges())
			}
			counts[i] = ri
		}
		if counts[0] > counts[1] || counts[1] > counts[2] {
			t.Fatalf("containment violated: induced=%d iso=%d hom=%d\npattern(n=%d)=%v\ntarget(n=%d)=%v",
				counts[0], counts[1], counts[2], gp.NumNodes(), gp.Edges(), gt.NumNodes(), gt.Edges())
		}
	})
}

// decodeFuzzUpdates decodes fuzzer bytes into a base target plus a
// sequence of edge-update batches. Like the other decoders it is
// positional and total — missing bytes read as zero — so every input is
// a valid mutation history and the fuzzer explores graph/batch shapes,
// not parser rejections:
//
//	[0]          target node count (1–6)
//	[1..]        n node labels (mod 3)
//	[.]          base edge count (mod 12), 2 bytes per edge
//	             u = b1 mod n, v = b2 mod n, label = (b1>>6) & 1
//	[.]          batch count (mod 4)
//	per batch:   update count (1 + mod 5), 3 bytes per update
//	             u = b1 mod n, v = b2 mod n, label = b3 & 1,
//	             remove = b3 & 2
//
// Duplicate updates, add/remove cancellations and no-op removals all
// arise naturally from the modular arithmetic.
func decodeFuzzUpdates(data []byte) (*Graph, [][]EdgeUpdate) {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	n := 1 + int(next())%6
	b := NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		b.AddNode(Label(next() % 3))
	}
	m := int(next()) % 12
	for i := 0; i < m; i++ {
		e1, e2 := next(), next()
		b.AddEdge(int32(int(e1)%n), int32(int(e2)%n), Label((e1>>6)&1))
	}
	nb := int(next()) % 4
	batches := make([][]EdgeUpdate, nb)
	for i := range batches {
		k := 1 + int(next())%5
		ups := make([]EdgeUpdate, k)
		for j := range ups {
			b1, b2, b3 := next(), next(), next()
			ups[j] = EdgeUpdate{
				From:   int32(int(b1) % n),
				To:     int32(int(b2) % n),
				Label:  Label(b3 & 1),
				Remove: b3&2 != 0,
			}
		}
		batches[i] = ups
	}
	return b.MustBuild(), batches
}

// FuzzEdgeUpdates drives random mutation histories through
// Target.ApplyUpdates and asserts, after every batch, that the
// incrementally-maintained state — edge multiset, domain index, query
// counts — equals a from-scratch rebuild of the same logical graph
// (TestApplyUpdatesDifferential under coverage guidance). The committed
// corpus lives in testdata/fuzz/FuzzEdgeUpdates; in a plain `go test`
// run the seeds execute as regression tests.
func FuzzEdgeUpdates(f *testing.F) {
	// Triangle base, one batch that removes an arc and re-adds it with
	// the other label.
	f.Add([]byte{
		3, 0, 1, 2,
		6, 0, 1, 1, 0, 1, 2, 2, 1, 2, 0, 0, 2,
		1, 3, 0, 1, 2, 0, 1, 1,
	})
	// Parallel edges and self-loops: base {0→0, 0→1 ×2}, two batches
	// exercising copy-count exhaustion (two removes of the same arc) and
	// in-batch add/remove cancellation.
	f.Add([]byte{
		2, 0, 0,
		3, 0, 0, 0, 1, 0, 1,
		2, 1, 0, 1, 2, 2, 0, 1, 2, 0, 1, 0, 0, 1, 2,
	})
	// Empty base graph, adds only.
	f.Add([]byte{4, 0, 1, 2, 0, 0, 1, 2, 0, 1, 0, 2, 3, 1, 1, 2, 0})
	// No-op batch (remove from the empty graph) followed by an add.
	f.Add([]byte{1, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 0})

	// Single-edge probe pattern: enough to catch a target whose
	// incremental index disagrees with its graph.
	pb := NewBuilder(2, 1)
	pb.AddNode(0)
	pb.AddNode(1)
	pb.AddEdge(0, 1, 0)
	probe := pb.MustBuild()

	f.Fuzz(func(t *testing.T, data []byte) {
		g, batches := decodeFuzzUpdates(data)
		tgt, err := NewTarget(g, TargetOptions{NLF: NLFExact})
		if err != nil {
			t.Fatal(err)
		}
		// Materialize the bitset rows up front so every ApplyUpdates
		// below exercises the incremental touched-row Rebuild path, whose
		// result IndexEqual then compares against a from-scratch build.
		tgt.state.Load().index.Rows(tgt.Graph())
		oracle := g.Edges()
		labels := nodeLabels(g)
		for bi, ups := range batches {
			if _, err := tgt.ApplyUpdates(context.Background(), ups); err != nil {
				t.Fatalf("batch %d: %v\nbase=%v ups=%v", bi, err, g.Edges(), ups)
			}
			oracle = applyOracle(oracle, ups)
			og := graphFromEdges(t, labels, oracle)

			got, want := sortedEdges(tgt.Graph()), sortedEdges(og)
			if len(got) != len(want) {
				t.Fatalf("batch %d: %d edges, oracle %d\nups=%v", bi, len(got), len(want), ups)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("batch %d: edge %d = %v, oracle %v\nups=%v", bi, i, got[i], want[i], ups)
				}
			}

			rebuilt, err := NewTarget(og, TargetOptions{NLF: NLFExact})
			if err != nil {
				t.Fatal(err)
			}
			// Build the rebuilt target's rows from scratch so IndexEqual's
			// row comparison runs: incrementally-rebuilt bitset rows must
			// be bit-identical to a clean build of the same logical graph.
			rebuilt.state.Load().index.Rows(rebuilt.Graph())
			if ok, diff := domain.IndexEqual(tgt.state.Load().index, rebuilt.state.Load().index); !ok {
				t.Fatalf("batch %d: incremental index differs from rebuild: %s\nbase=%v ups=%v",
					bi, diff, g.Edges(), ups)
			}
			for _, sem := range []Semantics{SubgraphIso, Homomorphism} {
				inc, err := tgt.Count(context.Background(), probe, Options{Algorithm: RIDSSIFC, Semantics: sem})
				if err != nil {
					t.Fatal(err)
				}
				if oc := testutil.BruteCountSem(probe, og, sem); inc != oc {
					t.Fatalf("batch %d: probe count under %v = %d, oracle %d\ngraph=%v", bi, sem, inc, oc, og.Edges())
				}
			}
		}
	})
}
