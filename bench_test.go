// Benchmarks regenerating every table and figure of the paper's
// evaluation (Kimmig et al. §5), one testing.B entry point each, plus
// micro-benchmarks of the engines and the ablation studies listed in
// DESIGN.md.
//
// Each figure benchmark runs the corresponding experiment of
// internal/bench on a scaled-down synthetic collection per iteration and
// reports the experiment's headline metric with b.ReportMetric, so
// `go test -bench=.` doubles as a quick reproduction run. For
// publication-shaped output use cmd/sgebench, which prints the full
// paper-style tables and accepts larger scales.
package parsge_test

import (
	"context"

	"math/rand"
	"parsge"
	"testing"
	"time"

	"parsge/internal/bench"
	"parsge/internal/testutil"
)

// benchSuite builds a small, deterministic suite. Scale and instance
// caps are chosen so the full -bench=. sweep finishes in minutes on one
// machine; crank them up via cmd/sgebench for bigger runs.
func benchSuite() *bench.Suite {
	return (&bench.Suite{
		Scale:         0.02,
		Seed:          20170525,
		Timeout:       5 * time.Second,
		LongThreshold: 10 * time.Millisecond,
		Workers:       []int{1, 2, 4, 8, 16},
		MaxInstances:  12,
		Out:           nil, // metrics only; sgebench prints the tables
	}).Defaults()
}

// BenchmarkTable1Collections regenerates Table 1 (collection statistics).
func BenchmarkTable1Collections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res := s.Table1()
		if len(res.Rows) != 3 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFig3WorkStealing regenerates Fig 3 (work stealing on/off:
// match time and per-worker search-space stddev, 16 workers).
func BenchmarkFig3WorkStealing(b *testing.B) {
	var imbalanceOff, imbalanceOn float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig3()
		imbalanceOff = res.Rows[0].MeanStddevWorkerStates
		imbalanceOn = res.Rows[1].MeanStddevWorkerStates
	}
	b.ReportMetric(imbalanceOff, "stddev-states/off")
	b.ReportMetric(imbalanceOn, "stddev-states/on")
}

// BenchmarkFig4TaskCoalescing regenerates Fig 4 (task group size sweep:
// match time and number of steals).
func BenchmarkFig4TaskCoalescing(b *testing.B) {
	var steals1, steals4 float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig4()
		for _, c := range res.Cells {
			if c.Collection == "PDBSv1" && c.Workers == 4 {
				switch c.GroupSize {
				case 1:
					steals1 = c.MeanSteals
				case 4:
					steals4 = c.MeanSteals
				}
			}
		}
	}
	b.ReportMetric(steals1, "steals/g1")
	b.ReportMetric(steals4, "steals/g4")
}

// BenchmarkTable2ParallelRI regenerates Table 2 (speedup of parallel parsge.RI
// on PDBSv1 over one worker).
func BenchmarkTable2ParallelRI(b *testing.B) {
	var work16 float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Table2()
		work16 = res.Rows[len(res.Rows)-1].WorkAvg
	}
	b.ReportMetric(work16, "work-speedup/16w")
}

// BenchmarkFig5Timeouts regenerates Fig 5 (timed-out instances on
// PDBSv1, parallel parsge.RI vs the parsge.RI 3.6 stand-in).
func BenchmarkFig5Timeouts(b *testing.B) {
	var t16 float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig5()
		t16 = float64(res.Rows[len(res.Rows)-1].TimeoutsParallel)
	}
	b.ReportMetric(t16, "timeouts/16w")
}

// BenchmarkFig6LongInstances regenerates Fig 6 (match time on long
// PDBSv1 instances vs worker count).
func BenchmarkFig6LongInstances(b *testing.B) {
	var speed16 float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig6()
		speed16 = res.Rows[len(res.Rows)-1].MeanWorkSpeed
	}
	b.ReportMetric(speed16, "work-speedup/16w")
}

// BenchmarkFig7Variants regenerates Fig 7 (search space and total time of
// parsge.RI-DS / parsge.RI-DS-SI / parsge.RI-DS-SI-FC on short instances).
func BenchmarkFig7Variants(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig7()
		var ds, fc float64
		for _, c := range res.Cells {
			if c.Collection == "GRAEMLIN32" {
				switch c.Variant {
				case "RI-DS":
					ds = c.MeanStates
				case "RI-DS-SI-FC":
					fc = c.MeanStates
				}
			}
		}
		if fc > 0 {
			ratio = ds / fc
		}
	}
	b.ReportMetric(ratio, "states-DS/FC")
}

// BenchmarkFig8SearchSpace regenerates Fig 8 (search space and states/sec
// on long samples).
func BenchmarkFig8SearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig8()
		if len(res.Cells) != 6 {
			b.Fatal("fig 8 incomplete")
		}
	}
}

// BenchmarkFig9TimeBreakdown regenerates Fig 9 (total/match/preprocessing
// time per variant; preprocessing is negligible).
func BenchmarkFig9TimeBreakdown(b *testing.B) {
	var preprocShare float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig9()
		var pre, total float64
		for _, c := range res.Cells {
			pre += c.PreprocTime
			total += c.TotalTime
		}
		if total > 0 {
			preprocShare = 100 * pre / total
		}
	}
	b.ReportMetric(preprocShare, "preproc-%")
}

// BenchmarkFig10ParallelRIDS regenerates Fig 10 (total time of parsge.RI-DS
// variants vs workers).
func BenchmarkFig10ParallelRIDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig10()
		if len(res.Cells) == 0 {
			b.Fatal("fig 10 empty")
		}
	}
}

// BenchmarkFig11ShortLong regenerates Fig 11 (Fig 10 split short/long —
// same measurement, split columns).
func BenchmarkFig11ShortLong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig10()
		for _, c := range res.Cells {
			if c.MeanTotalShort < 0 || c.MeanTotalLong < 0 {
				b.Fatal("negative split means")
			}
		}
	}
}

// BenchmarkFig12SearchSpaceSplit regenerates Fig 12 (search space of
// parsge.RI-DS vs parsge.RI-DS-SI-FC, short/long split).
func BenchmarkFig12SearchSpaceSplit(b *testing.B) {
	var ratioLong float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Fig12()
		var ds, fc float64
		for _, c := range res.Cells {
			if c.Collection == "GRAEMLIN32" {
				switch c.Algorithm {
				case "RI-DS":
					ds = c.MeanStatesLong
				case "RI-DS-SI-FC":
					fc = c.MeanStatesLong
				}
			}
		}
		if fc > 0 {
			ratioLong = ds / fc
		}
	}
	b.ReportMetric(ratioLong, "long-states-DS/FC")
}

// BenchmarkTable3ParallelRIDSSIFC regenerates Table 3 (speedup of
// parallel parsge.RI-DS-SI-FC on GRAEMLIN32 and PPIS32).
func BenchmarkTable3ParallelRIDSSIFC(b *testing.B) {
	var work16 float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().Table3()
		rows := res[0].Rows
		work16 = rows[len(rows)-1].WorkAvg
	}
	b.ReportMetric(work16, "graemlin-work-speedup/16w")
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationStealBack compares stealing from the back (paper) vs
// the front of the victim's deque.
func BenchmarkAblationStealBack(b *testing.B) {
	var stealsBack, stealsFront float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().AblationStealEnd()
		stealsBack = res.Rows[0].MeanSteals
		stealsFront = res.Rows[1].MeanSteals
	}
	b.ReportMetric(stealsBack, "steals/back")
	b.ReportMetric(stealsFront, "steals/front")
}

// BenchmarkAblationCopyEager compares lazy mapping copies (only on
// steals) against eager per-task copies (the Cilk++ parsge.VF2 strategy).
func BenchmarkAblationCopyEager(b *testing.B) {
	var lazy, eager float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().AblationEagerCopy()
		lazy = res.Rows[0].MeanMatchTime
		eager = res.Rows[1].MeanMatchTime
	}
	b.ReportMetric(lazy*1e3, "ms/lazy")
	b.ReportMetric(eager*1e3, "ms/eager")
}

// BenchmarkAblationInitialDistribution compares round-robin initial work
// distribution against seeding everything on worker 0.
func BenchmarkAblationInitialDistribution(b *testing.B) {
	var rrSteals, w0Steals float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().AblationInitialDistribution()
		rrSteals = res.Rows[0].MeanSteals
		w0Steals = res.Rows[1].MeanSteals
	}
	b.ReportMetric(rrSteals, "steals/round-robin")
	b.ReportMetric(w0Steals, "steals/worker0")
}

// BenchmarkAblationArcConsistency compares domain pruning depth: none,
// single pass, fixpoint.
func BenchmarkAblationArcConsistency(b *testing.B) {
	var statesNone, statesFix float64
	for i := 0; i < b.N; i++ {
		res := benchSuite().AblationArcConsistency()
		statesNone = res.Rows[0].MeanStates
		statesFix = res.Rows[2].MeanStates
	}
	b.ReportMetric(statesNone, "states/noAC")
	b.ReportMetric(statesFix, "states/fixpoint")
}

// ---------------------------------------------------------- micro benches

// benchInstance is a fixed mid-size instance for engine micro-benchmarks.
func benchInstance() (*parsge.Graph, *parsge.Graph) {
	return testutil.RandomInstance(99, testutil.InstanceOptions{
		TargetNodes:  300,
		TargetEdges:  3000,
		PatternNodes: 6,
		NodeLabels:   4,
		Extract:      true,
	})
}

func benchAlgorithm(b *testing.B, alg parsge.Algorithm, workers int) {
	gp, gt := benchInstance()
	b.ReportAllocs()
	b.ResetTimer()
	var matches int64
	for i := 0; i < b.N; i++ {
		res, err := parsge.Enumerate(gp, gt, parsge.Options{Algorithm: alg, Workers: workers, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		matches = res.Matches
	}
	b.ReportMetric(float64(matches), "matches")
}

func BenchmarkEnumerateRI(b *testing.B)       { benchAlgorithm(b, parsge.RI, 1) }
func BenchmarkEnumerateRIDS(b *testing.B)     { benchAlgorithm(b, parsge.RIDS, 1) }
func BenchmarkEnumerateRIDSSI(b *testing.B)   { benchAlgorithm(b, parsge.RIDSSI, 1) }
func BenchmarkEnumerateRIDSSIFC(b *testing.B) { benchAlgorithm(b, parsge.RIDSSIFC, 1) }
func BenchmarkEnumerateVF2(b *testing.B)      { benchAlgorithm(b, parsge.VF2, 1) }

func BenchmarkParallelWorkers2(b *testing.B)  { benchAlgorithm(b, parsge.RIDSSIFC, 2) }
func BenchmarkParallelWorkers4(b *testing.B)  { benchAlgorithm(b, parsge.RIDSSIFC, 4) }
func BenchmarkParallelWorkers8(b *testing.B)  { benchAlgorithm(b, parsge.RIDSSIFC, 8) }
func BenchmarkParallelWorkers16(b *testing.B) { benchAlgorithm(b, parsge.RIDSSIFC, 16) }

// -------------------------------------------------------- session benches
//
// The pair below quantifies the session API's amortization: the same 12
// patterns answered through one Target.EnumerateBatch call (target-side
// state built once, patterns scheduled over one shared work-stealing
// pool) versus 12 independent one-shot Enumerate calls (each rebuilding
// all target-side state and running alone). Compare ns/op directly.

// batchWorkload builds one mid-size labeled target and 12 patterns
// extracted from it, the "many queries, one target" service shape.
func batchWorkload() (*parsge.Graph, []*parsge.Graph) {
	_, gt := testutil.RandomInstance(7, testutil.InstanceOptions{
		TargetNodes:  400,
		TargetEdges:  4000,
		PatternNodes: 6,
		NodeLabels:   4,
		Extract:      true,
	})
	rng := rand.New(rand.NewSource(123))
	patterns := make([]*parsge.Graph, 12)
	for i := range patterns {
		patterns[i] = testutil.ExtractPattern(rng, gt, 5+i%3)
	}
	return gt, patterns
}

func BenchmarkBatchEnumerate(b *testing.B) {
	gt, patterns := batchWorkload()
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var matches int64
	for i := 0; i < b.N; i++ {
		results, err := tgt.EnumerateBatch(context.Background(), patterns, parsge.Options{Algorithm: parsge.RIDSSIFC})
		if err != nil {
			b.Fatal(err)
		}
		matches = 0
		for _, r := range results {
			matches += r.Matches
		}
	}
	b.ReportMetric(float64(matches), "matches")
}

func BenchmarkOneShotEnumerateLoop(b *testing.B) {
	gt, patterns := batchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	var matches int64
	for i := 0; i < b.N; i++ {
		matches = 0
		for _, gp := range patterns {
			res, err := parsge.Enumerate(gp, gt, parsge.Options{Algorithm: parsge.RIDSSIFC})
			if err != nil {
				b.Fatal(err)
			}
			matches += res.Matches
		}
	}
	b.ReportMetric(float64(matches), "matches")
}
