package parsge

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsge/internal/domain"
	"parsge/internal/lad"
	"parsge/internal/parallel"
	"parsge/internal/ri"
	"parsge/internal/steal"
	"parsge/internal/vf2"
)

// TargetOptions configures NewTarget.
type TargetOptions struct {
	// SkipLabelIndex skips precomputing the label→node buckets. Queries
	// then fall back to whole-vertex-set scans during preprocessing,
	// exactly like the one-shot API of earlier versions. Only worth
	// setting for a Target that will serve a single query on a graph
	// where the index memory matters.
	SkipLabelIndex bool
	// NLF selects the representation of the index's neighborhood-label-
	// frequency signatures: NLFAuto (the zero value) picks exact
	// signatures below a million target edges and the bucketed compact
	// ones above; NLFCompact forces the compact representation, which
	// bounds signature memory at a constant per target node instead of
	// O(target edges); NLFExact forces exact signatures regardless of
	// size (maximum pruning on huge label-rich targets, at full memory
	// cost). The compact filter is sound (never loses matches) and
	// exact for small label alphabets; on large alphabets it may prune
	// slightly less than the exact signatures. Ignored with
	// SkipLabelIndex.
	NLF NLFMode
	// DefaultWorkers replaces Options.Workers for queries that leave it
	// at zero ("unset"): a service can configure its parallelism once
	// per target instead of at every call site. Zero keeps the library
	// default (sequential); AutoWorkers sizes the pool per query. A
	// query that explicitly wants the sequential engine on such a
	// Target sets Workers: 1 — the explicit spelling of sequential,
	// never substituted.
	DefaultWorkers int
	// DefaultSemantics replaces Options.Semantics for queries that
	// leave it at SemanticsUnset (and don't set the legacy Induced
	// flag): a service can fix the matching semantics once per target.
	// The zero value (SemanticsUnset) keeps the library default
	// (SubgraphIso).
	//
	// Because SemanticsUnset and SubgraphIso are distinct values, an
	// explicit Options{Semantics: SubgraphIso} always overrides this
	// default — a hom- or induced-default Target remains fully
	// queryable under plain subgraph isomorphism.
	DefaultSemantics Semantics
}

// Target is a session handle for one target graph: it precomputes and
// caches target-side state exactly once — the label→node index consumed
// by domain computation and RI root-candidate generation, the degree
// statistics behind the Auto algorithm choice, and a pool of per-worker
// scratch arenas — and then serves any number of queries against that
// graph, concurrently if desired. All methods are safe for concurrent
// use; the amortization is what turns N independent Enumerate calls into
// a query-serving session (the architecture distributed engines build
// their target-side indexes around).
//
// Cancellation is context-driven: every query method takes a
// context.Context, and Options.Timeout (when set) is applied as a
// per-query context.WithTimeout on top of it. Cancellation is polled at
// the same low-frequency points the engines always used, so a search
// terminates promptly (typically well under 100 ms) after the context
// fires, reporting Result.TimedOut.
type Target struct {
	// state is the current graph snapshot plus everything derived from
	// it. Queries load it exactly once at entry and run against that
	// snapshot for their whole lifetime; ApplyUpdates swaps in a new
	// snapshot atomically, so a query never sees a half-applied update
	// and an update never blocks on running queries.
	state atomic.Pointer[targetState]
	arena *ri.Arena // node count is immutable, so the arena survives updates

	// nlfMode and skipIndex reproduce the NewTarget index configuration
	// for incremental maintenance and EnsureIndex rebuilds.
	nlfMode   NLFMode
	skipIndex bool
	// updateMu serializes the writers — ApplyUpdates, ReleaseIndex,
	// EnsureIndex — against each other (readers never take it).
	updateMu sync.Mutex

	defaultWorkers   int
	defaultSemantics Semantics

	stats sessionStats // aggregate query statistics, see Stats
}

// targetState is one immutable snapshot of the mutable target: the
// graph, the index derived from it (nil with SkipLabelIndex or after
// ReleaseIndex), the cached statistics behind the Auto algorithm
// choice, and the mutation epoch identifying the snapshot.
type targetState struct {
	g             *Graph
	index         *domain.Index
	meanDegree    float64
	autoAlgorithm Algorithm // chooseAlgorithm(Auto, g), resolved per snapshot
	epoch         uint64
}

// resolveAlgorithm maps Auto to the algorithm cached for this snapshot.
func (st *targetState) resolveAlgorithm(a Algorithm) Algorithm {
	if a == Auto {
		return st.autoAlgorithm
	}
	return a
}

// newTargetState derives the full snapshot state for g at the given
// epoch, building a fresh index unless skipped.
func newTargetState(g *Graph, mode NLFMode, skipIndex bool, epoch uint64) *targetState {
	st := &targetState{
		g:             g,
		autoAlgorithm: chooseAlgorithm(Auto, g),
		epoch:         epoch,
	}
	if n := g.NumNodes(); n > 0 {
		st.meanDegree = 2 * float64(g.NumEdges()) / float64(n)
	}
	if !skipIndex {
		st.index = domain.NewIndexMode(g, mode)
	}
	return st
}

// NewTarget precomputes the reusable target-side state for g.
func NewTarget(g *Graph, opts TargetOptions) (*Target, error) {
	if g == nil {
		return nil, fmt.Errorf("parsge: nil target graph")
	}
	if !opts.DefaultSemantics.Valid() {
		return nil, fmt.Errorf("parsge: unknown semantics %d", int32(opts.DefaultSemantics))
	}
	t := &Target{
		arena:            ri.NewArena(g.NumNodes()),
		nlfMode:          opts.NLF,
		skipIndex:        opts.SkipLabelIndex,
		defaultWorkers:   opts.DefaultWorkers,
		defaultSemantics: opts.DefaultSemantics,
	}
	t.state.Store(newTargetState(g, opts.NLF, opts.SkipLabelIndex, 0))
	return t, nil
}

// Graph returns the target graph of the current snapshot. After
// ApplyUpdates the returned graph is the updated one; graphs themselves
// are immutable, so a caller holding an older snapshot's graph keeps a
// consistent (if stale) view.
func (t *Target) Graph() *Graph { return t.state.Load().g }

// MeanDegree returns the current snapshot's mean total degree, the
// statistic the Auto algorithm choice is based on.
func (t *Target) MeanDegree() float64 { return t.state.Load().meanDegree }

// ResolveSemantics reports the effective matching semantics a query with
// these options runs under on this Target: the legacy Induced flag is
// folded first (an explicit choice, contradictions are errors), then the
// session's DefaultSemantics stands in for a query that chose nothing,
// and finally the library default (SubgraphIso) applies. The service
// layer keys its result cache by this resolved value, so an unset-
// semantics query and an explicit query of the same effective semantics
// share one cache entry.
func (t *Target) ResolveSemantics(opts Options) (Semantics, error) {
	sem, err := resolveSemantics(opts)
	if err != nil {
		return 0, err
	}
	if sem == SemanticsUnset {
		sem = t.defaultSemantics
	}
	return sem.Norm(), nil
}

// queryContext derives the per-query context: nil means Background, and
// a positive timeout wraps it in context.WithTimeout. The returned stop
// function must always be called.
func queryContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground documented nil-ctx default at the public query boundary; every internal path threads the caller ctx
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// Enumerate finds all subgraphs of the session's target isomorphic to
// pattern. Cancelling ctx (or exceeding opts.Timeout) aborts the search
// promptly; the partial Result then has TimedOut set and Matches as a
// lower bound. Safe to call concurrently with any other queries on the
// same Target.
func (t *Target) Enumerate(ctx context.Context, pattern *Graph, opts Options) (Result, error) {
	qctx, stop := queryContext(ctx, opts.Timeout)
	defer stop()
	return t.enumerate(qctx, pattern, opts)
}

// enumerate runs one query under an already-derived context (Timeout has
// been folded into ctx by the caller) and folds the outcome into the
// session statistics. Every query path — one-shot, batch item, stream —
// funnels through here, which is what makes Stats() complete.
func (t *Target) enumerate(ctx context.Context, pattern *Graph, opts Options) (Result, error) {
	res, err := t.enumerateQuery(ctx, pattern, opts)
	if err == nil {
		t.stats.record(&res)
	}
	return res, err
}

// enumerateQuery loads one target snapshot, dispatches the query
// against it, and stamps the result with the snapshot's epoch — the
// whole query (preprocessing included) sees exactly one graph version
// however many updates land concurrently.
func (t *Target) enumerateQuery(ctx context.Context, pattern *Graph, opts Options) (Result, error) {
	st := t.state.Load()
	res, err := t.enumerateOn(st, ctx, pattern, opts)
	if err == nil {
		res.Epoch = st.epoch
	}
	return res, err
}

// enumerateOn dispatches one query to the engine the options select,
// running entirely against the given snapshot.
func (t *Target) enumerateOn(st *targetState, ctx context.Context, pattern *Graph, opts Options) (Result, error) {
	if pattern == nil {
		return Result{}, fmt.Errorf("parsge: nil pattern graph")
	}
	// Check before preprocessing, not just in the search loops:
	// ri.Prepare's domain computation is O(pattern × target) and a
	// cancelled batch draining its queue must not pay it per pattern.
	if ctx.Err() != nil {
		return Result{TimedOut: true}, nil
	}
	opts.Algorithm = st.resolveAlgorithm(opts.Algorithm)
	if opts.Workers == 0 {
		opts.Workers = t.defaultWorkers
	}
	sem, err := t.ResolveSemantics(opts)
	if err != nil {
		return Result{}, err
	}
	if opts.Algorithm == VF2 || opts.Algorithm == LAD {
		if opts.Algorithm == VF2 {
			res := vf2.Enumerate(pattern, st.g, vf2.Options{
				Limit:         opts.Limit,
				Visit:         opts.Visit,
				Ctx:           ctx,
				Index:         st.index,
				SkipNLF:       opts.Pruning.DisableNLF,
				SkipInducedAC: opts.Pruning.DisableInducedAC,
				ACPasses:      opts.Pruning.ACPasses,
				Schedule:      opts.Pruning.Schedule,
				Kernel:        opts.Pruning.Kernel,
				Semantics:     sem,
			})
			return Result{
				Matches:       res.Matches,
				States:        res.States,
				PreprocTime:   res.PreprocTime,
				MatchTime:     res.MatchTime,
				TimedOut:      res.Aborted,
				Unsatisfiable: res.Unsatisfiable,
				Plan:          planInfo(res.PreprocStats),
			}, nil
		}
		res := lad.Enumerate(pattern, st.g, lad.Options{
			Limit:         opts.Limit,
			Visit:         opts.Visit,
			Ctx:           ctx,
			Index:         st.index,
			SkipNLF:       opts.Pruning.DisableNLF,
			SkipInducedAC: opts.Pruning.DisableInducedAC,
			ACPasses:      opts.Pruning.ACPasses,
			Schedule:      opts.Pruning.Schedule,
			Kernel:        opts.Pruning.Kernel,
			Semantics:     sem,
		})
		return Result{
			Matches:       res.Matches,
			States:        res.States,
			PreprocTime:   res.PreprocTime,
			MatchTime:     res.MatchTime,
			TimedOut:      res.Aborted,
			Unsatisfiable: res.Unsatisfiable,
			Plan:          planInfo(res.PreprocStats),
		}, nil
	}
	if opts.Algorithm < RI || opts.Algorithm > RIDSSIFC {
		return Result{}, fmt.Errorf("parsge: unknown algorithm %d", int(opts.Algorithm))
	}

	prep, err := ri.Prepare(pattern, st.g, ri.Options{
		Variant:       ri.Variant(opts.Algorithm),
		Semantics:     sem,
		SkipNLF:       opts.Pruning.DisableNLF,
		SkipInducedAC: opts.Pruning.DisableInducedAC,
		ACPasses:      opts.Pruning.ACPasses,
		Schedule:      opts.Pruning.Schedule,
		Kernel:        opts.Pruning.Kernel,
		TargetIndex:   st.index,
	})
	if err != nil {
		return Result{}, err
	}
	if opts.Workers == AutoWorkers {
		opts.Workers = autoWorkerCount(prep)
	}

	if opts.Workers <= 1 {
		res := prep.Run(ri.RunOptions{Limit: opts.Limit, Visit: opts.Visit, Ctx: ctx, Arena: t.arena})
		return Result{
			Matches:       res.Matches,
			States:        res.States,
			PreprocTime:   res.PreprocTime,
			MatchTime:     res.MatchTime,
			TimedOut:      res.Aborted,
			Unsatisfiable: res.Unsatisfiable,
			DepthStates:   res.DepthStates,
			Plan:          planInfo(prep.PreprocStats),
		}, nil
	}

	res := parallel.Enumerate(prep, parallel.Options{
		Workers:         opts.Workers,
		TaskGroupSize:   opts.TaskGroupSize,
		DisableStealing: opts.DisableStealing,
		Limit:           opts.Limit,
		Visit:           opts.Visit,
		Ctx:             ctx,
		Arena:           t.arena,
		Seed:            opts.Seed,
	})
	return Result{
		Matches:         res.Matches,
		States:          res.States,
		PreprocTime:     res.PreprocTime,
		MatchTime:       res.MatchTime,
		TimedOut:        res.Aborted,
		Unsatisfiable:   res.Unsatisfiable,
		Steals:          res.Steals,
		PerWorkerStates: res.PerWorkerStates,
		DepthStates:     res.DepthStates,
		Plan:            planInfo(prep.PreprocStats),
	}, nil
}

// Count is shorthand for Enumerate(...).Matches.
func (t *Target) Count(ctx context.Context, pattern *Graph, opts Options) (int64, error) {
	res, err := t.Enumerate(ctx, pattern, opts)
	return res.Matches, err
}

// FindAll collects every mapping into a slice (mapping[patternNode] =
// targetNode). It overrides opts.Visit; enumeration order is unspecified
// for parallel runs. Use a Limit for patterns with very many embeddings.
func (t *Target) FindAll(ctx context.Context, pattern *Graph, opts Options) ([][]int32, error) {
	var mu sync.Mutex
	var all [][]int32
	opts.Visit = func(m []int32) bool {
		cp := append([]int32(nil), m...)
		mu.Lock()
		all = append(all, cp)
		mu.Unlock()
		return true
	}
	if _, err := t.Enumerate(ctx, pattern, opts); err != nil {
		return nil, err
	}
	return all, nil
}

// BatchItem is one query of a mixed batch: a pattern plus optional
// per-pattern overrides of the batch-wide Options.
type BatchItem struct {
	// Pattern is the query graph.
	Pattern *Graph
	// Semantics, when not SemanticsUnset, selects this pattern's
	// matching semantics, overriding the batch Options (the Semantics
	// field and the legacy Induced flag alike) — so one batch, served
	// by one shared worker pool, can mix subgraph-iso, induced and
	// homomorphism queries. SemanticsUnset falls back to the batch
	// Options, then to the Target's DefaultSemantics.
	Semantics Semantics
}

// batchRunner schedules whole pattern queries as tasks of the shared
// work-stealing pool: each task is an item index, executed as one
// sequential enumeration. Distinct tasks write distinct result slots,
// and steal.Runtime.Run's completion barrier publishes them to the
// caller.
type batchRunner struct {
	t        *Target
	ctx      context.Context
	items    []BatchItem
	opts     Options
	results  []Result
	errs     []error
	executed []bool
}

// optsFor applies item i's overrides to the batch-wide options.
func (b *batchRunner) optsFor(i int) Options {
	o := b.opts
	if s := b.items[i].Semantics; s != SemanticsUnset {
		o.Semantics = s
		o.Induced = false // the explicit per-item choice wins
	}
	return o
}

func (b *batchRunner) Execute(_ *steal.Worker[int], i int) {
	b.executed[i] = true
	b.results[i], b.errs[i] = b.t.enumerate(b.ctx, b.items[i].Pattern, b.optsFor(i))
}

func (b *batchRunner) PackSteal(_ *steal.Worker[int], i int) int { return i }

// EnumerateBatch answers many pattern queries against the session's
// target over one shared work-stealing pool: patterns are dealt
// round-robin across the workers and idle workers steal queued patterns
// from busy ones, so an irregular mix of cheap and expensive patterns
// still balances. Each query runs with the sequential engine (the
// parallelism is across patterns); target-side preprocessing, the label
// index, and the per-worker scratch arenas are shared by all of them.
//
// Options applies to every pattern, with Workers sizing the shared pool:
// 0 or AutoWorkers means min(GOMAXPROCS, number of patterns). A non-nil
// Visit is invoked concurrently (it must be safe for concurrent use) and
// does not identify which pattern a mapping belongs to — prefer
// per-pattern FindAll when that matters. Timeout and ctx cover the whole
// batch.
//
// The returned slice has one Result per pattern, index-aligned. The
// error is the join of all per-pattern errors (nil when every query
// succeeded); Results of failed patterns are zero.
func (t *Target) EnumerateBatch(ctx context.Context, patterns []*Graph, opts Options) ([]Result, error) {
	items := make([]BatchItem, len(patterns))
	for i, gp := range patterns {
		items[i] = BatchItem{Pattern: gp}
	}
	return t.EnumerateBatchItems(ctx, items, opts)
}

// EnumerateBatchItems is EnumerateBatch with per-pattern overrides:
// each BatchItem may choose its own matching semantics, so a mixed
// workload (say, motif counting under subgraph-iso next to clique
// detection under induced and reachability-style homomorphism queries)
// shares one work-stealing pool instead of needing one batch per
// semantics. Scheduling, cancellation and the result contract are
// exactly those of EnumerateBatch.
func (t *Target) EnumerateBatchItems(ctx context.Context, items []BatchItem, opts Options) ([]Result, error) {
	results := make([]Result, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, nil
	}
	qctx, stop := queryContext(ctx, opts.Timeout)
	defer stop()

	workers := opts.Workers
	if workers == 0 || workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	perQuery := opts
	perQuery.Workers = 1 // parallelism is across patterns
	perQuery.Timeout = 0 // already folded into qctx

	runner := &batchRunner{
		t:        t,
		ctx:      qctx,
		items:    items,
		opts:     perQuery,
		results:  results,
		errs:     errs,
		executed: make([]bool, len(items)),
	}

	if workers <= 1 {
		for i := range items {
			results[i], errs[i] = t.enumerate(qctx, items[i].Pattern, runner.optsFor(i))
		}
		return results, errors.Join(errs...)
	}

	rt, err := steal.New(steal.Config{Workers: workers, Stealing: true, Seed: opts.Seed}, runner)
	if err != nil {
		// workers ≥ 2 here; steal.New cannot fail.
		panic(err)
	}
	for i := range items {
		rt.Seed(i%workers, i)
	}
	rt.Run(qctx)
	// A cancelled pool exits with seeded-but-never-popped patterns
	// still queued; their zero Results must not read as "completed, no
	// matches". Mark them aborted like every executed-and-cancelled
	// query.
	if qctx.Err() != nil {
		for i, done := range runner.executed {
			if !done {
				results[i].TimedOut = true
			}
		}
	}
	return results, errors.Join(errs...)
}

// StreamEnd is the terminal event of EnumerateStreamResult: the final
// Result of the enumeration (Result.TimedOut reports a truncated
// stream — context cancellation or Timeout) and the query error. A
// stream capped by Options.Limit is reported as complete, not
// truncated: the caller received everything it asked for.
type StreamEnd struct {
	Result Result
	Err    error
}

// EnumerateStreamResult runs a query in a background goroutine and
// delivers matches over a channel, for pipelines that consume embeddings
// as they are found rather than buffer them (FindAll) or process them
// inline (Visit). The matches channel is closed when the enumeration
// finishes; the terminal StreamEnd — final Result plus error — is
// delivered on the second channel strictly after the close (always
// exactly one value), so a consumer that received the end event never
// blocks draining the match channel. A consumer that needs to know
// whether a stream it drained was complete checks Result.TimedOut — a
// truncated stream is not an error. opts.Visit must be nil.
//
// Contract: cancelling ctx tears the producer down even when the
// consumer has stopped draining the channel — the producer blocks in a
// send-or-cancelled select, never in a bare send — so abandoning a
// stream costs nothing beyond cancelling its context (this fixes the
// abandonment leak of the pre-session API). A consumer that drains to
// completion needs no cancel; one that may stop early should
// defer cancel() and simply return.
func (t *Target) EnumerateStreamResult(ctx context.Context, pattern *Graph, opts Options) (<-chan Match, <-chan StreamEnd) {
	matches := make(chan Match, 64)
	end := make(chan StreamEnd, 1)
	if opts.Visit != nil {
		close(matches)
		end <- StreamEnd{Err: fmt.Errorf("parsge: EnumerateStreamResult requires a nil Visit")}
		return matches, end
	}
	qctx, stop := queryContext(ctx, opts.Timeout)
	opts.Timeout = 0 // folded into qctx; must not be re-applied downstream
	cancelled := qctx.Done()
	opts.Visit = func(m []int32) bool {
		cp := append([]int32(nil), m...)
		select {
		case matches <- Match{Mapping: cp}:
			return true
		case <-cancelled:
			return false
		}
	}
	go func() {
		defer stop()
		res, err := t.enumerate(qctx, pattern, opts)
		// Close strictly before delivering the terminal event. The old
		// order (terminal first, close via defer) let a consumer observe
		// the end of the stream while the match channel was still open —
		// a race a draining consumer could trip over.
		close(matches)
		end <- StreamEnd{Result: res, Err: err}
	}()
	return matches, end
}

// EnumerateStream is EnumerateStreamResult reduced to the error: the
// matches channel closes when the enumeration finishes, then the final
// error is delivered (always exactly one value). Callers that need the
// final Result — e.g. to distinguish a complete stream from a truncated
// one — use EnumerateStreamResult.
func (t *Target) EnumerateStream(ctx context.Context, pattern *Graph, opts Options) (<-chan Match, <-chan error) {
	matches, end := t.EnumerateStreamResult(ctx, pattern, opts)
	done := make(chan error, 1)
	go func() { done <- (<-end).Err }()
	return matches, done
}
