module parsge

go 1.24
