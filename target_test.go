package parsge

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"parsge/internal/ri"
	"parsge/internal/testutil"
)

func TestNewTargetNil(t *testing.T) {
	if _, err := NewTarget(nil, TargetOptions{}); err == nil {
		t.Fatal("nil target accepted")
	}
}

// hardInstance builds an unlabeled instance big enough that a full
// enumeration takes well over a second — room for cancellation to land
// mid-search.
func hardInstance(t testing.TB) (gp, gt *Graph) {
	t.Helper()
	return testutil.RandomInstance(3, testutil.InstanceOptions{
		TargetNodes:  300,
		TargetEdges:  9000,
		PatternNodes: 8,
		NodeLabels:   1,
		Extract:      true,
	})
}

// TestTargetConcurrentQueries exercises one shared *Target from many
// goroutines with a mix of algorithms and worker counts; run under
// -race this is the session's concurrency-safety test.
func TestTargetConcurrentQueries(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tgt.Count(context.Background(), gp, Options{})
	if err != nil || want == 0 {
		t.Fatalf("baseline: %d, %v", want, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			algs := []Algorithm{RI, RIDS, RIDSSIFC, Auto, VF2, LAD}
			for i := 0; i < 4; i++ {
				opts := Options{Algorithm: algs[(g+i)%len(algs)], Workers: g % 3}
				got, err := tgt.Count(context.Background(), gp, opts)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("goroutine %d (%v): %d matches, want %d", g, opts.Algorithm, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTargetCancelPrompt verifies the acceptance contract: a long
// search terminates promptly after ctx cancellation, reporting TimedOut
// with Matches as a lower bound.
func TestTargetCancelPrompt(t *testing.T) {
	gp, gt := hardInstance(t)
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		type outcome struct {
			res Result
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := tgt.Enumerate(ctx, gp, Options{Algorithm: RI, Workers: workers})
			done <- outcome{res, err}
		}()
		time.Sleep(30 * time.Millisecond)
		cancelled := time.Now()
		cancel()
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatal(o.err)
			}
			if elapsed := time.Since(cancelled); elapsed > 500*time.Millisecond {
				t.Fatalf("workers=%d: returned %v after cancel, want prompt (≲100ms)", workers, elapsed)
			}
			if !o.res.TimedOut {
				t.Skipf("workers=%d: search finished before cancellation; environment too fast", workers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: cancelled search never returned", workers)
		}
	}
}

func TestTargetTimeoutComposesWithCtx(t *testing.T) {
	gp, gt := hardInstance(t)
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Enumerate(context.Background(), gp, Options{Algorithm: RI, Timeout: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("instance finished before the timeout fired; environment too fast")
	}
}

func TestEnumerateBatchAgreesWithSingles(t *testing.T) {
	_, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes: 80, TargetEdges: 500, PatternNodes: 5, NodeLabels: 3, Extract: true,
	})
	rng := rand.New(rand.NewSource(99))
	var patterns []*Graph
	for len(patterns) < 9 {
		patterns = append(patterns, testutil.ExtractPattern(rng, gt, 4+len(patterns)%3))
	}
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := tgt.EnumerateBatch(context.Background(), patterns, Options{Algorithm: RIDSSIFC})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(patterns) {
		t.Fatalf("%d results for %d patterns", len(results), len(patterns))
	}
	for i, gp := range patterns {
		want, err := tgt.Count(context.Background(), gp, Options{Algorithm: RIDSSIFC})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Matches != want {
			t.Errorf("pattern %d: batch %d matches, single %d", i, results[i].Matches, want)
		}
	}
}

func TestEnumerateBatchErrors(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty batch: no results, no error.
	if res, err := tgt.EnumerateBatch(context.Background(), nil, Options{}); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	// One bad pattern must not poison its neighbors.
	results, err := tgt.EnumerateBatch(context.Background(), []*Graph{gp, nil, gp}, Options{})
	if err == nil {
		t.Fatal("nil pattern in batch produced no error")
	}
	if results[0].Matches == 0 || results[2].Matches == 0 {
		t.Fatalf("healthy patterns starved by failing one: %+v", results)
	}
	if results[1].Matches != 0 {
		t.Fatal("failed pattern reported matches")
	}
}

func TestEnumerateBatchCancellation(t *testing.T) {
	gp, gt := hardInstance(t)
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	patterns := []*Graph{gp, gp, gp, gp}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := tgt.EnumerateBatch(ctx, patterns, Options{Algorithm: RI})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.TimedOut {
			t.Errorf("pattern %d: pre-cancelled batch not marked TimedOut", i)
		}
	}
}

// TestEnumerateBatchMidCancel cancels a wide batch shortly after it
// starts: every slot — patterns aborted mid-search AND patterns the
// cancelled pool never popped — must read as TimedOut, never as a
// completed zero-match result.
func TestEnumerateBatchMidCancel(t *testing.T) {
	gp, gt := hardInstance(t)
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]*Graph, 16)
	for i := range patterns {
		patterns[i] = gp // each takes seconds alone; 16 cannot finish in 30ms
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results, err := tgt.EnumerateBatch(ctx, patterns, Options{Algorithm: RI, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.TimedOut {
			t.Errorf("pattern %d: cancelled batch slot not marked TimedOut (Matches=%d)", i, r.Matches)
		}
	}
}

// TestTargetStreamCancelTearsDown abandons a stream mid-consumption:
// cancelling the context must close the channel and let the producer
// goroutine exit even though nobody drains the remaining matches — the
// leak the pre-session API documented.
func TestTargetStreamCancelTearsDown(t *testing.T) {
	gp, gt := hardInstance(t)
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	matches, done := tgt.EnumerateStream(ctx, gp, Options{Algorithm: RI})
	// Take at most one match, then walk away without draining.
	select {
	case <-matches:
	case <-time.After(5 * time.Second):
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("producer did not exit after ctx cancellation")
	}
	// The channel must be closed (drainable) after done reports.
	for range matches {
	}
	// Give exited goroutines a moment to be reaped, then sanity-check we
	// did not leave a worker pool behind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before stream, %d after teardown", before, n)
	}
}

func TestTargetStreamDrainToCompletion(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tgt.Count(context.Background(), gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matches, done := tgt.EnumerateStream(context.Background(), gp, Options{Workers: 4})
	var got int64
	for range matches {
		got++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed %d matches, want %d", got, want)
	}
}

func TestTargetDefaultWorkers(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{DefaultWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Enumerate(context.Background(), gp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkerStates) != 4 {
		t.Fatalf("DefaultWorkers ignored: %d per-worker entries", len(res.PerWorkerStates))
	}
	// An explicit Workers wins over the session default.
	res, err = tgt.Enumerate(context.Background(), gp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorkerStates) != 2 {
		t.Fatalf("explicit Workers overridden: %d per-worker entries", len(res.PerWorkerStates))
	}
}

func TestTargetSkipLabelIndexAgrees(t *testing.T) {
	gp, gt := testutil.RandomInstance(21, testutil.InstanceOptions{
		TargetNodes: 50, TargetEdges: 300, PatternNodes: 4, NodeLabels: 4, Extract: true,
	})
	indexed, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewTarget(gt, TargetOptions{SkipLabelIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RI, RIDS, RIDSSIFC, LAD} {
		a, err := indexed.Count(context.Background(), gp, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Count(context.Background(), gp, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: indexed %d vs plain %d matches", alg, a, b)
		}
	}
}

func TestTargetAutoResolution(t *testing.T) {
	// The Auto choice is cached at NewTarget and must match what
	// chooseAlgorithm derives from the same graph.
	for _, gt := range []*Graph{gridTarget(), (&Builder{}).MustBuild()} {
		tgt, err := NewTarget(gt, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := tgt.state.Load().resolveAlgorithm(Auto), chooseAlgorithm(Auto, gt); got != want {
			t.Fatalf("cached auto algorithm %v, chooseAlgorithm says %v", got, want)
		}
		if got := tgt.state.Load().resolveAlgorithm(VF2); got != VF2 {
			t.Fatalf("explicit algorithm rewritten to %v", got)
		}
	}
}

func TestAutoWorkerCount(t *testing.T) {
	// Narrow search: a single root candidate clamps the pool to one
	// worker regardless of core count.
	narrowP := NewBuilder(1, 0)
	narrowP.AddNode(7)
	narrowT := NewBuilder(3, 0)
	narrowT.AddNode(7)
	narrowT.AddNode(8)
	narrowT.AddNode(8)
	prep, err := ri.Prepare(narrowP.MustBuild(), narrowT.MustBuild(), ri.Options{Variant: ri.VariantRIDS})
	if err != nil {
		t.Fatal(err)
	}
	if got := autoWorkerCount(prep); got != 1 {
		t.Fatalf("single-root instance sized pool to %d, want 1", got)
	}

	// Wide search: hundreds of root candidates cap at GOMAXPROCS.
	wideP := NewBuilder(1, 0)
	wideP.AddNode(7)
	wideT := NewBuilder(500, 0)
	for i := 0; i < 500; i++ {
		wideT.AddNode(7)
	}
	prep, err = ri.Prepare(wideP.MustBuild(), wideT.MustBuild(), ri.Options{Variant: ri.VariantRI})
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 500 {
		want = 500
	}
	if got := autoWorkerCount(prep); got != want {
		t.Fatalf("wide instance sized pool to %d, want %d (GOMAXPROCS cap)", got, want)
	}

	// Zero roots (empty target) still yields a valid pool of one.
	prep, err = ri.Prepare(wideP.MustBuild(), (&Builder{}).MustBuild(), ri.Options{Variant: ri.VariantRI})
	if err != nil {
		t.Fatal(err)
	}
	if got := autoWorkerCount(prep); got != 1 {
		t.Fatalf("empty target sized pool to %d, want 1", got)
	}
}

// TestSessionStats: every query path — one-shot, batch item, stream —
// must fold into Target.Stats(), and plan-reporting queries must land in
// the histogram bucket their Result.Plan renders as.
func TestSessionStats(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := tgt.Enumerate(ctx, gp, Options{Algorithm: RIDSSIFC})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.EnumerateBatch(ctx, []*Graph{gp, gp}, Options{Algorithm: RIDSSIFC}); err != nil {
		t.Fatal(err)
	}
	matches, done := tgt.EnumerateStream(ctx, gp, Options{Algorithm: RI})
	for range matches {
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := tgt.Stats()
	if st.Queries != 4 {
		t.Fatalf("Queries = %d, want 4 (one-shot + 2 batch items + stream)", st.Queries)
	}
	if st.Matches != 4*res.Matches {
		t.Fatalf("Matches = %d, want %d", st.Matches, 4*res.Matches)
	}
	// Three RIDSSIFC runs report a plan, the plain-RI stream does not.
	if st.Plans.Planned != 3 || st.Plans.NoPlan != 1 {
		t.Fatalf("histogram planned/noplan = %d/%d, want 3/1", st.Plans.Planned, st.Plans.NoPlan)
	}
	b := st.Plans.Bucket(res.Plan.String())
	if b.Count != 3 {
		t.Fatalf("bucket %q count = %d, want 3 (histogram: %+v)", res.Plan.String(), b.Count, st.Plans)
	}
	if b.DomainAfterUnary != 3*int64(res.Plan.DomainAfterUnary) || b.DomainFinal != 3*int64(res.Plan.DomainFinal) {
		t.Fatalf("bucket domain sums inconsistent: %+v vs plan %+v", b, res.Plan)
	}
	if st.PreprocTime <= 0 || st.MatchTime < 0 {
		t.Fatalf("timing aggregates not recorded: %+v", st)
	}
}

// TestStreamEndTruncation: EnumerateStreamResult's terminal event must
// report a complete stream as such, and a cancelled stream as truncated
// (Result.TimedOut) — delivered strictly after the matches channel
// closed, so "end received" implies "drain terminates".
func TestStreamEndTruncation(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Complete stream.
	matches, end := tgt.EnumerateStreamResult(context.Background(), gp, Options{})
	var got int64
	for range matches {
		got++
	}
	e := <-end
	if e.Err != nil || e.Result.TimedOut {
		t.Fatalf("complete stream reported err=%v truncated=%v", e.Err, e.Result.TimedOut)
	}
	if e.Result.Matches != got {
		t.Fatalf("terminal Result.Matches = %d, streamed %d", e.Result.Matches, got)
	}

	// Cancelled stream: a world with far more matches than the channel
	// buffer, so the producer is genuinely mid-flight when we walk away
	// (the square-in-grid stream above fits in the buffer and would
	// complete before the cancel could truncate it).
	cb := NewBuilder(12, 12*11)
	cb.AddNodes(12)
	for i := int32(0); i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			cb.AddEdgeBoth(i, j, NoLabel)
		}
	}
	pb := NewBuilder(3, 2)
	pb.AddNodes(3)
	pb.AddEdge(0, 1, NoLabel)
	pb.AddEdge(1, 2, NoLabel)
	big, err := NewTarget(cb.MustBuild(), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	matches, end = big.EnumerateStreamResult(ctx, pb.MustBuild(), Options{Semantics: Homomorphism})
	<-matches
	cancel()
	select {
	case e = <-end:
	case <-time.After(10 * time.Second):
		t.Fatal("terminal event never arrived after cancellation")
	}
	if e.Err != nil {
		t.Fatalf("cancelled stream errored: %v", e.Err)
	}
	if !e.Result.TimedOut {
		t.Fatal("cancelled stream not reported as truncated")
	}
	// The matches channel is closed by the time the end event exists.
	for range matches {
	}
}

// TestCanonicalPatternExposed: the public wrappers agree with each other
// and are relabeling-invariant (the deep property tests live in
// internal/graph and internal/service).
func TestCanonicalPatternExposed(t *testing.T) {
	gp := squarePattern()
	enc, perm := CanonicalPattern(gp)
	if len(perm) != gp.NumNodes() || len(enc) == 0 {
		t.Fatalf("CanonicalPattern: enc %d bytes, perm %d entries", len(enc), len(perm))
	}
	rng := rand.New(rand.NewSource(8))
	for k := 0; k < 4; k++ {
		twin := testutil.PermuteGraph(rng, gp)
		enc2, _ := CanonicalPattern(twin)
		if string(enc2) != string(enc) || CanonicalHash(twin) != CanonicalHash(gp) {
			t.Fatal("relabeled pattern changed the canonical form")
		}
	}
}
